/**
 * @file
 * Workload-generator tests: program well-formedness, instruction-mix
 * shape versus Fig. 3, and kernel op-count invariants.
 */
#include <gtest/gtest.h>

#include "ir/workloads.h"

namespace effact {
namespace {

FheParams
paperParams()
{
    FheParams p; // N=2^16, L=24, dnum=4 (Table III)
    return p;
}

void
checkWellFormed(const IrProgram &prog)
{
    for (size_t i = 0; i < prog.insts.size(); ++i) {
        const IrInst &inst = prog.insts[i];
        if (inst.dead)
            continue;
        for (int operand : {inst.a, inst.b, inst.c}) {
            ASSERT_GE(operand, -1);
            if (operand >= 0) {
                ASSERT_LT(static_cast<size_t>(operand), i)
                    << "forward reference at " << i;
                ASSERT_FALSE(prog.insts[operand].dead);
            }
        }
        if (inst.mem.object >= 0) {
            ASSERT_LT(static_cast<size_t>(inst.mem.object),
                      prog.objects.size());
        }
    }
}

TEST(Workloads, AllBenchmarksAreWellFormed)
{
    for (auto &[name, w] : buildAllBenchmarks(paperParams())) {
        SCOPED_TRACE(name);
        checkWellFormed(w.program);
        EXPECT_GT(w.program.liveCount(), 1000u);
        EXPECT_GT(w.repeat, 0.0);
    }
}

TEST(Workloads, BootstrapMixMatchesFig3Shape)
{
    Workload w = buildBootstrapping(paperParams());
    StatSet mix = w.program.opMix();
    const double ntt = mix.get("NTT");
    const double mult = mix.get("MULT") + mix.get("BC_MULT");
    const double add = mix.get("ADD") + mix.get("BC_ADD");
    const double total = ntt + mult + add + mix.get("AUTO") +
                         mix.get("LOAD") + mix.get("STORE");

    // Fig. 3: NTT ~6.5%, MULT+ADD ~90% of compute instructions; BConv
    // accounts for roughly half the MULTs and ADDs. Structural lowering
    // will not match exactly — require the qualitative shape.
    EXPECT_LT(ntt / total, 0.20);
    EXPECT_GT((mult + add) / total, 0.60);
    EXPECT_GT(mix.get("BC_MULT") / mult, 0.30);
    EXPECT_LT(mix.get("BC_MULT") / mult, 0.70);
    EXPECT_GT(mix.get("BC_ADD") / add, 0.30);
    EXPECT_LT(mix.get("BC_ADD") / add, 0.70);
}

TEST(Workloads, MixIsBConvHeavyInAllCkksBenchmarks)
{
    for (auto &[name, w] : buildAllBenchmarks(paperParams())) {
        if (name == "DBLookup")
            continue; // depth-1 BGV: barely any key switching
        SCOPED_TRACE(name);
        StatSet mix = w.program.opMix();
        EXPECT_GT(mix.get("BC_MULT"), 0.0);
        EXPECT_GT(mix.get("BC_ADD"), 0.0);
    }
}

TEST(Workloads, KeySwitchOpCountsScaleWithDnum)
{
    FheParams p2 = paperParams();
    p2.dnum = 2;
    FheParams p4 = paperParams();
    p4.dnum = 4;

    auto loadCount = [](const FheParams &p) {
        IrProgram prog;
        KernelBuilder kb(prog, p);
        int evk = kb.switchingKeyObject("evk");
        IrCt a = kb.inputCiphertext("a", p.levels);
        IrCt b = kb.inputCiphertext("b", p.levels);
        kb.output("out", kb.hmult(a, b, evk));
        return prog.opMix().get("LOAD");
    };
    // More digits -> more evk polynomials streamed per key switch
    // (2 * dnum * (l + alpha) residues); total compute is NOT monotone
    // in dnum because alpha shrinks as dnum grows.
    EXPECT_GT(loadCount(p4), loadCount(p2));
}

TEST(Workloads, RescaleCostsLinearInLevel)
{
    FheParams p = paperParams();
    IrProgram prog;
    KernelBuilder kb(prog, p);
    IrCt a = kb.inputCiphertext("a", 10);
    size_t before = prog.liveCount();
    kb.rescale(a);
    size_t cost10 = prog.liveCount() - before;

    IrCt b = kb.inputCiphertext("b", 20);
    before = prog.liveCount();
    kb.rescale(b);
    size_t cost20 = prog.liveCount() - before;
    EXPECT_GT(cost20, cost10);
    EXPECT_LT(cost20, 3 * cost10);
}

TEST(Workloads, BconvMatchesAnalyticCounts)
{
    FheParams p = paperParams();
    IrProgram prog;
    KernelBuilder kb(prog, p);
    IrBuilder &b = kb.builder();
    int obj = b.object("in", 6, false);
    PolyVal v = b.load(obj, 0, 6);
    size_t before = prog.liveCount();
    kb.bconv(v, 10);
    size_t cost = prog.liveCount() - before;
    // l qhat-inv MULs + per target limb: l MULs + (l-1) ADDs.
    EXPECT_EQ(cost, 6 + 10 * 6 + 10 * 5);
}

TEST(Workloads, TfheUsesAutoAndNtt)
{
    Workload w = buildTfheBootstrap();
    checkWellFormed(w.program);
    StatSet mix = w.program.opMix();
    EXPECT_GT(mix.get("AUTO"), 0.0);
    EXPECT_GT(mix.get("NTT"), 0.0);
    EXPECT_GT(mix.get("MULT"), 0.0);
}

TEST(Workloads, ReadOnlyFootprintIncludesKeys)
{
    Workload w = buildBootstrapping(paperParams());
    // Three switching-key objects at dnum=4, L=24, alpha=6:
    // 3 * 4 * 2 * 30 residues * 512 KB = 360 MB minimum.
    EXPECT_GT(w.program.readOnlyBytes(), size_t(300) << 20);
}

TEST(Workloads, CompactPreservesMix)
{
    Workload w = buildHelr(paperParams());
    StatSet before = w.program.opMix();
    w.program.compact();
    StatSet after = w.program.opMix();
    for (const auto &[key, value] : before.all())
        EXPECT_DOUBLE_EQ(after.get(key), value) << key;
}

} // namespace
} // namespace effact
