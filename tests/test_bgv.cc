/**
 * @file
 * BGV scheme tests: exact slot arithmetic mod t, depth-1 multiplication
 * with relinearization, rotations, and a miniature DB-lookup (the
 * HElib-style workload EFFACT evaluates in Table VII).
 */
#include <gtest/gtest.h>

#include "bgv/bgv.h"
#include "math/automorphism.h"

namespace effact {
namespace {

BgvParams
smallParams()
{
    BgvParams p;
    p.logN = 10;
    p.logQ = 58;
    p.t = 65537;
    p.decompLog = 16;
    return p;
}

std::vector<u64>
randomSlots(Rng &rng, size_t n, u64 t)
{
    std::vector<u64> v(n);
    for (auto &x : v)
        x = rng.uniform(t);
    return v;
}

TEST(Bgv, EncodeDecodeRoundTrip)
{
    Rng rng(50);
    BgvScheme bgv(smallParams(), rng);
    auto slots = randomSlots(rng, bgv.slots(), bgv.plainModulus());
    EXPECT_EQ(bgv.decode(bgv.encode(slots)), slots);
}

TEST(Bgv, EncryptDecryptRoundTrip)
{
    Rng rng(51);
    BgvScheme bgv(smallParams(), rng);
    auto slots = randomSlots(rng, bgv.slots(), bgv.plainModulus());
    auto ct = bgv.encrypt(bgv.encode(slots));
    EXPECT_EQ(bgv.decode(bgv.decrypt(ct)), slots);
}

TEST(Bgv, HomomorphicAddExact)
{
    Rng rng(52);
    BgvScheme bgv(smallParams(), rng);
    const u64 t = bgv.plainModulus();
    auto a = randomSlots(rng, bgv.slots(), t);
    auto b = randomSlots(rng, bgv.slots(), t);
    auto ct = bgv.add(bgv.encrypt(bgv.encode(a)), bgv.encrypt(bgv.encode(b)));
    auto got = bgv.decode(bgv.decrypt(ct));
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(got[i], addMod(a[i], b[i], t)) << "slot " << i;
}

TEST(Bgv, HomomorphicMultExact)
{
    Rng rng(53);
    BgvScheme bgv(smallParams(), rng);
    const u64 t = bgv.plainModulus();
    auto a = randomSlots(rng, bgv.slots(), t);
    auto b = randomSlots(rng, bgv.slots(), t);
    auto ct = bgv.mult(bgv.encrypt(bgv.encode(a)),
                       bgv.encrypt(bgv.encode(b)));
    auto got = bgv.decode(bgv.decrypt(ct));
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(got[i], mulMod(a[i], b[i], t)) << "slot " << i;
}

TEST(Bgv, MultPlainAndAddPlain)
{
    Rng rng(54);
    BgvScheme bgv(smallParams(), rng);
    const u64 t = bgv.plainModulus();
    auto a = randomSlots(rng, bgv.slots(), t);
    auto m = randomSlots(rng, bgv.slots(), t);
    auto ct = bgv.addPlain(bgv.multPlain(bgv.encrypt(bgv.encode(a)),
                                         bgv.encode(m)),
                           bgv.encode(m));
    auto got = bgv.decode(bgv.decrypt(ct));
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(got[i], addMod(mulMod(a[i], m[i], t), m[i], t));
}

TEST(Bgv, RotationIsSlotPermutation)
{
    Rng rng(55);
    BgvScheme bgv(smallParams(), rng);
    const u64 t = bgv.plainModulus();
    auto a = randomSlots(rng, bgv.slots(), t);
    auto rot = bgv.rotate(bgv.encrypt(bgv.encode(a)), 1);
    auto got = bgv.decode(bgv.decrypt(rot));

    // The expected permutation: automorphism sigma_{5} on the mod-t
    // NTT (slot) domain.
    AutoPermutation perm(bgv.degree(), galoisElt(1, bgv.degree()));
    std::vector<u64> expect(a.size());
    perm.apply(a.data(), expect.data());
    EXPECT_EQ(got, expect);
}

TEST(Bgv, MiniDbLookup)
{
    // One-hot query times DB column, then tree-reduce: the core pattern
    // of HElib's DB-Lookup. The query selects record 5.
    Rng rng(56);
    BgvScheme bgv(smallParams(), rng);
    const size_t n = bgv.slots();
    const u64 t = bgv.plainModulus();

    std::vector<u64> db(n), query(n, 0);
    for (size_t i = 0; i < n; ++i)
        db[i] = (7 * i + 3) % t;
    query[5] = 1;

    auto ct_q = bgv.encrypt(bgv.encode(query));
    auto selected = bgv.multPlain(ct_q, bgv.encode(db));
    auto got = bgv.decode(bgv.decrypt(selected));
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(got[i], i == 5 ? db[5] : 0u);
}

TEST(Bgv, MultThenAddChainStaysCorrect)
{
    // A mult followed by adds and plaintext ops: checks that the noise
    // budget of the single-modulus variant covers the DB-lookup pattern
    // (this variant is depth-1; deeper circuits need modulus switching).
    Rng rng(57);
    BgvScheme bgv(smallParams(), rng);
    const u64 t = bgv.plainModulus();
    std::vector<u64> a(bgv.slots()), b(bgv.slots()), c(bgv.slots());
    for (size_t i = 0; i < a.size(); ++i) {
        a[i] = i % 17;
        b[i] = (i + 1) % 13;
        c[i] = (i + 2) % 7;
    }
    auto prod = bgv.mult(bgv.encrypt(bgv.encode(a)),
                         bgv.encrypt(bgv.encode(b)));
    auto ct = bgv.add(prod, bgv.encrypt(bgv.encode(c)));
    ct = bgv.addPlain(ct, bgv.encode(c));
    auto got = bgv.decode(bgv.decrypt(ct));
    for (size_t i = 0; i < a.size(); ++i) {
        u64 expect = addMod(addMod(mulMod(a[i], b[i], t), c[i], t), c[i],
                            t);
        ASSERT_EQ(got[i], expect) << "slot " << i;
    }
}

} // namespace
} // namespace effact
