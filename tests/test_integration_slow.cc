/**
 * @file
 * Paper-scale integration sweeps (logN = 16, L = 24 — the Table III
 * operating point): compile-and-simulate at full size across pass
 * combinations and design points, and pin the event-driven simulator
 * against the legacy rescan loop on the full bootstrapping trace.
 *
 * The option-corner and design-point sweeps run as one `SweepEngine`
 * batch at `EFFACT_THREADS` workers (default: hardware concurrency;
 * set it to 1 for the serial path), which is both the paper-scale
 * soak test of the batch runtime and a large CI wall-clock win.
 *
 * Registered with the `slow` CTest label and configuration so the
 * default `ctest` run stays fast: run with `ctest -C slow -L slow`.
 */
#include <gtest/gtest.h>

#include "platform/platform.h"
#include "runtime/sweep.h"

namespace effact {
namespace {

FheParams
paperFhe()
{
    return FheParams{}; // logN=16, L=24, dnum=4, lanes=1024
}

TEST(PaperScale, BootstrappingCompilesAndSimulates)
{
    Workload w = buildBootstrapping(paperFhe());
    HardwareConfig hw = HardwareConfig::asicEffact27();
    Platform platform(hw, Platform::fullOptions(hw.sramBytes));
    PlatformResult r = platform.run(w);

    // Paper-scale programs are ~100k+ machine instructions.
    EXPECT_GT(r.sim.instructions, size_t(50) << 10);
    EXPECT_GT(r.sim.cycles, 0.0);
    EXPECT_GT(r.amortizedUs, 0.0);
    for (double u : {r.sim.dramUtil, r.sim.nttUtil, r.sim.mulAddUtil,
                     r.sim.autoUtil}) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0 + 1e-9);
    }
}

TEST(PaperScale, EventCoreMatchesLegacyLoopOnFullTrace)
{
    Workload w = buildBootstrapping(paperFhe());
    HardwareConfig hw = HardwareConfig::asicEffact27();
    Compiler compiler(Platform::fullOptions(hw.sramBytes));
    MachineProgram mp = compiler.compile(w.program);

    Simulator sim(hw);
    SimReport ev = sim.run(mp);
    SimReport ref = sim.runReference(mp);
    EXPECT_DOUBLE_EQ(ev.cycles, ref.cycles);
    EXPECT_DOUBLE_EQ(ev.dramBytes, ref.dramBytes);
    EXPECT_DOUBLE_EQ(ev.dramUtil, ref.dramUtil);
    EXPECT_DOUBLE_EQ(ev.nttUtil, ref.nttUtil);
    EXPECT_DOUBLE_EQ(ev.mulAddUtil, ref.mulAddUtil);
    EXPECT_DOUBLE_EQ(ev.autoUtil, ref.autoUtil);
}

/**
 * The un-optimized corner (no PRE/peephole/scheduling/streaming) takes
 * a very different path through codegen and the issue core than the
 * full-options trace above; pin it against the legacy loop too. The
 * remaining corners are covered at small scale by the randomized
 * differential harness (test_fuzz_differential).
 */
TEST(PaperScale, EventCoreMatchesLegacyLoopOnUnoptimizedTrace)
{
    CompilerOptions opts;
    opts.pre = false;
    opts.peephole = false;
    opts.schedule = false;
    opts.streaming = false;
    Workload w = buildBootstrapping(paperFhe());
    Compiler compiler(opts);
    MachineProgram mp = compiler.compile(w.program);
    HardwareConfig hw = HardwareConfig::asicEffact27();
    SimReport ev = Simulator(hw).run(mp);
    SimReport ref = Simulator(hw).runReference(mp);
    EXPECT_GT(ev.cycles, 0.0);
    EXPECT_DOUBLE_EQ(ev.cycles, ref.cycles);
    EXPECT_DOUBLE_EQ(ev.dramBytes, ref.dramBytes);
}

/**
 * The full paper-scale grid as one batch: every ablation corner of
 * {pre, peephole, schedule, streaming} on ASIC-EFFACT-27, plus full
 * bootstrapping on every design point. Corner jobs must match the
 * legacy rescan loop; every job must complete with sane utilization.
 */
TEST(PaperScale, SweepEngineRunsCornersAndDesignPoints)
{
    SweepEngine engine({defaultThreadCount()});

    // The corners: baseline, each axis alone, and everything on.
    const std::vector<int> corners = {0, 1, 2, 4, 8, 15};
    HardwareConfig hw27 = HardwareConfig::asicEffact27();
    for (int mask : corners) {
        CompilerOptions opts;
        opts.pre = mask & 1;
        opts.peephole = mask & 2;
        opts.schedule = mask & 4;
        opts.streaming = mask & 8;
        engine.submit("corner" + std::to_string(mask),
                      [] { return buildBootstrapping(paperFhe()); }, hw27,
                      opts);
    }

    const std::vector<HardwareConfig> configs = {
        HardwareConfig::asicEffact27(), HardwareConfig::asicEffact54(),
        HardwareConfig::asicEffact108(), HardwareConfig::asicEffact162(),
        HardwareConfig::fpgaEffact()};
    for (const HardwareConfig &hw : configs)
        engine.submit(hw.name,
                      [] { return buildBootstrapping(paperFhe()); }, hw,
                      Platform::fullOptions(hw.sramBytes));

    const std::vector<SweepResult> &results = engine.runAll();
    ASSERT_EQ(results.size(), corners.size() + configs.size());
    for (const SweepResult &r : results) {
        EXPECT_GT(r.platform.sim.cycles, 0.0) << r.name;
        EXPECT_GT(r.platform.benchTimeMs, 0.0) << r.name;
        EXPECT_NE(r.platform.machineFingerprint, 0u) << r.name;
        for (double u :
             {r.platform.sim.dramUtil, r.platform.sim.nttUtil,
              r.platform.sim.mulAddUtil, r.platform.sim.autoUtil}) {
            EXPECT_GE(u, 0.0) << r.name;
            EXPECT_LE(u, 1.0 + 1e-9) << r.name;
        }
    }
    // Aggregates cover the whole batch.
    const StatSet &agg = engine.aggregates();
    EXPECT_EQ(agg.get("sweep.jobs"),
              double(corners.size() + configs.size()));
    EXPECT_EQ(agg.get("platform.cycles.count"),
              double(corners.size() + configs.size()));
    EXPECT_GE(agg.get("platform.cycles.max"),
              agg.get("platform.cycles.min"));
}

} // namespace
} // namespace effact
