/**
 * @file
 * Paper-scale integration sweeps (logN = 16, L = 24 — the Table III
 * operating point): compile-and-simulate at full size across pass
 * combinations and design points, and pin the event-driven simulator
 * against the legacy rescan loop on the full bootstrapping trace.
 *
 * Registered with the `slow` CTest label and configuration so the
 * default `ctest` run stays fast: run with `ctest -C slow -L slow`.
 */
#include <gtest/gtest.h>

#include "platform/platform.h"

namespace effact {
namespace {

FheParams
paperFhe()
{
    return FheParams{}; // logN=16, L=24, dnum=4, lanes=1024
}

TEST(PaperScale, BootstrappingCompilesAndSimulates)
{
    Workload w = buildBootstrapping(paperFhe());
    HardwareConfig hw = HardwareConfig::asicEffact27();
    Platform platform(hw, Platform::fullOptions(hw.sramBytes));
    PlatformResult r = platform.run(w);

    // Paper-scale programs are ~100k+ machine instructions.
    EXPECT_GT(r.sim.instructions, size_t(50) << 10);
    EXPECT_GT(r.sim.cycles, 0.0);
    EXPECT_GT(r.amortizedUs, 0.0);
    for (double u : {r.sim.dramUtil, r.sim.nttUtil, r.sim.mulAddUtil,
                     r.sim.autoUtil}) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0 + 1e-9);
    }
}

TEST(PaperScale, EventCoreMatchesLegacyLoopOnFullTrace)
{
    Workload w = buildBootstrapping(paperFhe());
    HardwareConfig hw = HardwareConfig::asicEffact27();
    Compiler compiler(Platform::fullOptions(hw.sramBytes));
    MachineProgram mp = compiler.compile(w.program);

    Simulator sim(hw);
    SimReport ev = sim.run(mp);
    SimReport ref = sim.runReference(mp);
    EXPECT_DOUBLE_EQ(ev.cycles, ref.cycles);
    EXPECT_DOUBLE_EQ(ev.dramBytes, ref.dramBytes);
    EXPECT_DOUBLE_EQ(ev.dramUtil, ref.dramUtil);
    EXPECT_DOUBLE_EQ(ev.nttUtil, ref.nttUtil);
    EXPECT_DOUBLE_EQ(ev.mulAddUtil, ref.mulAddUtil);
    EXPECT_DOUBLE_EQ(ev.autoUtil, ref.autoUtil);
}

/** Ablation corners of {pre, peephole, schedule, streaming}. */
class PaperScaleOptions : public ::testing::TestWithParam<int> {};

TEST_P(PaperScaleOptions, CompilesSimulatesAndMatchesLegacy)
{
    const int mask = GetParam();
    CompilerOptions opts;
    opts.pre = mask & 1;
    opts.peephole = mask & 2;
    opts.schedule = mask & 4;
    opts.streaming = mask & 8;

    Workload w = buildBootstrapping(paperFhe());
    Compiler compiler(opts);
    MachineProgram mp = compiler.compile(w.program);
    HardwareConfig hw = HardwareConfig::asicEffact27();
    SimReport ev = Simulator(hw).run(mp);
    SimReport ref = Simulator(hw).runReference(mp);
    EXPECT_GT(ev.cycles, 0.0);
    EXPECT_DOUBLE_EQ(ev.cycles, ref.cycles);
    EXPECT_DOUBLE_EQ(ev.dramBytes, ref.dramBytes);
}

// The corners: baseline, each axis alone, and everything on.
INSTANTIATE_TEST_SUITE_P(Corners, PaperScaleOptions,
                         ::testing::Values(0, 1, 2, 4, 8, 15));

/** All design points run the full-size trace to completion. */
class PaperScaleDesignPoints : public ::testing::TestWithParam<int> {};

TEST_P(PaperScaleDesignPoints, RunsFullBootstrapping)
{
    HardwareConfig hw;
    switch (GetParam()) {
      case 0: hw = HardwareConfig::asicEffact27(); break;
      case 1: hw = HardwareConfig::asicEffact54(); break;
      case 2: hw = HardwareConfig::asicEffact108(); break;
      case 3: hw = HardwareConfig::asicEffact162(); break;
      default: hw = HardwareConfig::fpgaEffact(); break;
    }
    Workload w = buildBootstrapping(paperFhe());
    Platform p(hw, Platform::fullOptions(hw.sramBytes));
    PlatformResult r = p.run(w);
    EXPECT_GT(r.benchTimeMs, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Configs, PaperScaleDesignPoints,
                         ::testing::Range(0, 5));

} // namespace
} // namespace effact
