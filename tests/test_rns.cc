/**
 * @file
 * RNS basis / polynomial / base-conversion tests, including the Eq. 5
 * merged double-Montgomery BConv equivalence.
 */
#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/automorphism.h"
#include "math/primes.h"
#include "rns/bconv.h"
#include "rns/poly.h"

namespace effact {
namespace {

std::shared_ptr<RnsBasis>
makeBasis(size_t n, size_t limbs, unsigned bits,
          const std::vector<u64> &exclude = {})
{
    return std::make_shared<RnsBasis>(n,
                                      genNttPrimes(limbs, bits, n, exclude));
}

TEST(RnsBasis, CrtRoundTripSmallValues)
{
    auto basis = makeBasis(64, 3, 40);
    Rng rng(31);
    for (int iter = 0; iter < 100; ++iter) {
        u64 x = rng.uniform(1ULL << 50);
        std::vector<u64> residues;
        for (size_t j = 0; j < basis->size(); ++j)
            residues.push_back(x % basis->prime(j));
        BigInt rec = basis->crtReconstruct(residues);
        EXPECT_EQ(rec.compare(BigInt(x)), 0);
    }
}

TEST(RnsBasis, CrtCenteredNegative)
{
    auto basis = makeBasis(64, 3, 40);
    // Residues of Q - 5 should reconstruct centered as -5.
    std::vector<u64> residues;
    for (size_t j = 0; j < basis->size(); ++j)
        residues.push_back(basis->prime(j) - 5);
    EXPECT_DOUBLE_EQ(basis->crtCenteredDouble(residues), -5.0);
}

TEST(RnsBasis, PrefixSharesPrimes)
{
    auto basis = makeBasis(64, 4, 40);
    auto sub = basis->prefix(2);
    EXPECT_EQ(sub->size(), 2u);
    EXPECT_EQ(sub->prime(0), basis->prime(0));
    EXPECT_EQ(sub->prime(1), basis->prime(1));
}

TEST(RnsBasis, ConcatOrdersPrimes)
{
    auto q_basis = makeBasis(64, 2, 40);
    auto p_basis = makeBasis(64, 2, 40, q_basis->primes());
    auto joined = q_basis->concat(*p_basis);
    EXPECT_EQ(joined->size(), 4u);
    EXPECT_EQ(joined->prime(2), p_basis->prime(0));
}

TEST(RnsPoly, AddSubNegRoundTrip)
{
    auto basis = makeBasis(128, 3, 45);
    Rng rng(32);
    RnsPoly a(basis, PolyFormat::Coeff), b(basis, PolyFormat::Coeff);
    a.sampleUniform(rng);
    b.sampleUniform(rng);
    RnsPoly c = a;
    c.addInPlace(b);
    c.subInPlace(b);
    for (size_t j = 0; j < basis->size(); ++j)
        EXPECT_EQ(c.limb(j), a.limb(j));

    RnsPoly d = a;
    d.negInPlace();
    d.addInPlace(a);
    EXPECT_TRUE(d.isZero());
}

TEST(RnsPoly, SignedEmbeddingIsConsistentAcrossLimbs)
{
    auto basis = makeBasis(64, 3, 40);
    std::vector<i64> coeffs(64, 0);
    coeffs[0] = -7;
    coeffs[5] = 123;
    RnsPoly p(basis, PolyFormat::Coeff);
    p.setFromSigned(coeffs);
    for (size_t j = 0; j < basis->size(); ++j) {
        EXPECT_EQ(p.limb(j)[0], basis->prime(j) - 7);
        EXPECT_EQ(p.limb(j)[5], 123u);
    }
}

TEST(RnsPoly, EvalMulMatchesNegacyclicReference)
{
    const size_t n = 64;
    auto basis = makeBasis(n, 2, 40);
    Rng rng(33);
    RnsPoly a(basis, PolyFormat::Coeff), b(basis, PolyFormat::Coeff);
    a.sampleUniform(rng);
    b.sampleUniform(rng);
    auto ref0 = Ntt::negacyclicMulSchoolbook(a.limb(0).data(),
                                             b.limb(0).data(), n,
                                             basis->prime(0));
    RnsPoly fa = a, fb = b;
    fa.toEval();
    fb.toEval();
    fa.mulEvalInPlace(fb);
    fa.toCoeff();
    EXPECT_TRUE(std::equal(fa.limb(0).begin(), fa.limb(0).end(),
                           ref0.begin(), ref0.end()));
}

TEST(RnsPoly, AutomorphCommutesWithNtt)
{
    const size_t n = 128;
    auto basis = makeBasis(n, 2, 40);
    Rng rng(34);
    RnsPoly a(basis, PolyFormat::Coeff);
    a.sampleUniform(rng);
    const u64 t = galoisElt(4, n);

    RnsPoly coeff_path = a.automorph(t);
    coeff_path.toEval();

    RnsPoly eval_path = a;
    eval_path.toEval();
    eval_path = eval_path.automorph(t);

    for (size_t j = 0; j < basis->size(); ++j)
        EXPECT_EQ(coeff_path.limb(j), eval_path.limb(j));
}

TEST(BConv, ExactForSmallCenteredValues)
{
    // The float-corrected converter is exact on centered values.
    const size_t n = 32;
    auto from = makeBasis(n, 3, 40);
    auto to = makeBasis(n, 2, 40, from->primes());
    BaseConverter bc(from, to);

    std::vector<i64> coeffs(n, 0);
    coeffs[0] = 42;
    coeffs[1] = -1000;
    coeffs[n - 1] = 77777;
    RnsPoly a(from, PolyFormat::Coeff);
    a.setFromSigned(coeffs);

    RnsPoly out = bc.convertExact(a);
    for (size_t p = 0; p < to->size(); ++p) {
        const u64 q = to->prime(p);
        EXPECT_EQ(out.limb(p)[0], 42u);
        EXPECT_EQ(out.limb(p)[1], reduceSigned(-1000, q));
        EXPECT_EQ(out.limb(p)[n - 1], 77777u);
    }
}

TEST(BConv, ErrorIsSmallMultipleOfQ)
{
    // For uniform inputs the HPS fast conversion may add e*Q with
    // 0 <= e < l; verify the residual is exactly such a multiple.
    const size_t n = 16;
    auto from = makeBasis(n, 3, 40);
    auto to = makeBasis(n, 1, 40, from->primes());
    BaseConverter bc(from, to);

    Rng rng(35);
    RnsPoly a(from, PolyFormat::Coeff);
    a.sampleUniform(rng);
    RnsPoly out = bc.convert(a);

    const u64 p = to->prime(0);
    const u64 q_mod_p = from->product().modU64(p);
    for (size_t i = 0; i < n; ++i) {
        std::vector<u64> residues;
        for (size_t j = 0; j < from->size(); ++j)
            residues.push_back(a.limb(j)[i]);
        u64 x_mod_p = from->crtReconstruct(residues).modU64(p);
        // out = x + e*Q (mod p) for some 0 <= e < l.
        bool ok = false;
        u64 cand = x_mod_p;
        for (size_t e = 0; e < from->size() && !ok; ++e) {
            ok = (cand == out.limb(0)[i]);
            cand = addMod(cand, q_mod_p, p);
        }
        EXPECT_TRUE(ok) << "coefficient " << i;
    }
}

TEST(BConv, MontgomeryMergedMatchesPlain)
{
    // Eq. 5: SM input x NM const -> NM, then x DM const -> SM, must equal
    // the plain conversion lifted to SM.
    const size_t n = 32;
    auto from = makeBasis(n, 3, 40);
    auto to = makeBasis(n, 2, 40, from->primes());
    BaseConverter bc(from, to);

    Rng rng(36);
    RnsPoly a(from, PolyFormat::Coeff);
    a.sampleUniform(rng);

    RnsPoly plain = bc.convert(a);

    // Lift the input into SM form limb-by-limb.
    RnsPoly a_sm = a;
    for (size_t j = 0; j < from->size(); ++j) {
        const Montgomery &mont = from->limb(j).mont;
        for (auto &c : a_sm.limb(j))
            c = mont.toMont(c);
    }
    RnsPoly merged_sm = bc.convertMontgomery(a_sm, /*scale_n_inv=*/false);
    for (size_t p = 0; p < to->size(); ++p) {
        const Montgomery &mont = to->limb(p).mont;
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(mont.fromMont(merged_sm.limb(p)[i]),
                      plain.limb(p)[i]);
    }
}

TEST(BConv, MergedNInvFoldsInttPostScale)
{
    // Feeding an unscaled iNTT output through the merged converter with
    // scale_n_inv=true equals scaling then converting (Sec. IV-D5).
    const size_t n = 64;
    auto from = makeBasis(n, 2, 40);
    auto to = makeBasis(n, 1, 40, from->primes());
    BaseConverter bc(from, to);

    Rng rng(37);
    RnsPoly a(from, PolyFormat::Eval);
    a.sampleUniform(rng);

    // Reference: full iNTT (with 1/N), then plain conversion.
    RnsPoly ref = a;
    ref.toCoeff();
    RnsPoly expect = bc.convert(ref);

    // Merged: iNTT without 1/N, SM domain, fold 1/N into BConv.
    RnsPoly raw = a;
    for (size_t j = 0; j < from->size(); ++j) {
        const Montgomery &mont = from->limb(j).mont;
        auto &limb = raw.limb(j);
        for (auto &c : limb)
            c = mont.toMont(c);
        from->limb(j).ntt.backwardNoScale(limb.data());
    }
    // raw is now SM-form unscaled coefficients; mark format manually via
    // a fresh poly.
    RnsPoly raw_coeff(from, PolyFormat::Coeff);
    for (size_t j = 0; j < from->size(); ++j)
        raw_coeff.limb(j) = raw.limb(j);

    RnsPoly got_sm = bc.convertMontgomery(raw_coeff, /*scale_n_inv=*/true);
    for (size_t p = 0; p < to->size(); ++p) {
        const Montgomery &mont = to->limb(p).mont;
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(mont.fromMont(got_sm.limb(p)[i]), expect.limb(p)[i]);
    }
}

TEST(BConv, OpCountsMatchFormula)
{
    auto from = makeBasis(16, 4, 40);
    auto to = makeBasis(16, 3, 40, from->primes());
    BaseConverter bc(from, to);
    EXPECT_EQ(bc.multCount(), 4u * (1 + 3));
    EXPECT_EQ(bc.addCount(), 3u * 3);
}

} // namespace
} // namespace effact
