/**
 * @file
 * Compiler backend tests: each pass on hand-built programs, then the
 * whole pipeline on paper-scale workloads (invariants: no lost stores,
 * spills appear exactly when SRAM is short, streaming only with single
 * consumers).
 */
#include <gtest/gtest.h>

#include "compiler/pass.h"
#include "compiler/pass_manager.h"
#include "ir/workloads.h"

namespace effact {
namespace {

/** Builds a tiny program: load a, load b, t=a*b, u=t+a, store u. */
IrProgram
tinyProgram()
{
    IrProgram prog;
    prog.name = "tiny";
    prog.degree = 1 << 12;
    prog.lanes = 64;
    IrBuilder b(prog);
    int in = b.object("in", 2, false);
    int out = b.object("out", 1, false);
    PolyVal a = b.load(in, 0, 1);
    PolyVal bb = b.load(in, 1, 1);
    PolyVal t = b.mul(a, bb);
    PolyVal u = b.add(t, a);
    b.store(out, 0, u);
    return prog;
}

TEST(CopyProp, RemovesCopyChains)
{
    IrProgram prog;
    prog.degree = 1 << 10;
    IrBuilder b(prog);
    int in = b.object("in", 1, false);
    int out = b.object("out", 1, false);
    PolyVal a = b.load(in, 0, 1);
    int c1 = b.emit1(IrOp::Copy, a.limbs[0], -1, 0);
    int c2 = b.emit1(IrOp::Copy, c1, -1, 0);
    int sum = b.emit1(IrOp::Add, c2, a.limbs[0], 0);
    b.store(out, 0, PolyVal{{sum}});

    StatSet stats;
    runCopyProp(prog, stats);
    EXPECT_EQ(stats.get("copyProp.removed"), 2);
    // The Add now reads the load directly.
    EXPECT_EQ(prog.insts[sum].a, a.limbs[0]);
}

TEST(ConstProp, FoldsIdentities)
{
    IrProgram prog;
    prog.degree = 1 << 10;
    IrBuilder b(prog);
    int in = b.object("in", 1, false);
    int out = b.object("out", 1, false);
    PolyVal a = b.load(in, 0, 1);
    PolyVal x1 = b.mulImm(a, 1); // x*1
    PolyVal x2 = b.addImm(x1, 0); // +0
    b.store(out, 0, x2);

    StatSet stats;
    runConstProp(prog, stats);
    EXPECT_EQ(stats.get("constProp.identityFolded"), 2);
}

TEST(ConstProp, ChainsImmediateMultiplies)
{
    IrProgram prog;
    prog.degree = 1 << 10;
    IrBuilder b(prog);
    int in = b.object("in", 1, false);
    int out = b.object("out", 1, false);
    PolyVal a = b.load(in, 0, 1);
    PolyVal x = b.mulImm(b.mulImm(a, 3), 5);
    b.store(out, 0, x);

    StatSet stats;
    runConstProp(prog, stats);
    EXPECT_EQ(stats.get("constProp.immChained"), 1);
    // The outer multiply now reads the load with imm 15.
    EXPECT_EQ(prog.insts[x.limbs[0]].imm, 15u);
    EXPECT_EQ(prog.insts[x.limbs[0]].a, a.limbs[0]);
}

TEST(Pre, RemovesRedundantComputation)
{
    IrProgram prog;
    prog.degree = 1 << 10;
    IrBuilder b(prog);
    int in = b.object("in", 2, false);
    int out = b.object("out", 2, false);
    PolyVal a = b.load(in, 0, 1);
    PolyVal c = b.load(in, 1, 1);
    PolyVal m1 = b.mul(a, c);
    PolyVal m2 = b.mul(a, c); // redundant
    b.store(out, 0, m1);
    b.store(out, 1, m2);

    StatSet stats;
    runPre(prog, stats);
    EXPECT_EQ(stats.get("pre.cseRemoved"), 1);
}

TEST(Pre, DeduplicatesReadOnlyLoads)
{
    IrProgram prog;
    prog.degree = 1 << 10;
    IrBuilder b(prog);
    int key = b.object("key", 1, true);
    int in = b.object("in", 1, false);
    int out = b.object("out", 2, false);
    PolyVal a = b.load(in, 0, 1);
    PolyVal k1 = b.load(key, 0, 1);
    PolyVal k2 = b.load(key, 0, 1); // same key residue again
    b.store(out, 0, b.mul(a, k1));
    b.store(out, 1, b.mul(a, k2));

    StatSet stats;
    runPre(prog, stats);
    EXPECT_EQ(stats.get("pre.readOnlyReloadsRemoved"), 1);
    // The two multiplies become one after VN (same operands).
    EXPECT_EQ(stats.get("pre.cseRemoved"), 1);
}

TEST(Pre, DoesNotMergeMutableLoads)
{
    IrProgram prog;
    prog.degree = 1 << 10;
    IrBuilder b(prog);
    int buf = b.object("buf", 1, false);
    int out = b.object("out", 2, false);
    PolyVal l1 = b.load(buf, 0, 1);
    b.store(buf, 0, b.mulImm(l1, 3));
    PolyVal l2 = b.load(buf, 0, 1); // must NOT merge with l1
    b.store(out, 0, l2);

    StatSet stats;
    runPre(prog, stats);
    EXPECT_EQ(stats.get("pre.readOnlyReloadsRemoved"), 0);
}

TEST(Peephole, FusesMulAddIntoMac)
{
    IrProgram prog = tinyProgram();
    StatSet stats;
    runPeephole(prog, stats);
    EXPECT_EQ(stats.get("peephole.macFused"), 1);
    // Find the Mac and check its three operands.
    bool found = false;
    for (const auto &inst : prog.insts) {
        if (!inst.dead && inst.op == IrOp::Mac) {
            found = true;
            EXPECT_GE(inst.c, 0);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Alias, OrdersSameLocationAccesses)
{
    IrProgram prog;
    prog.degree = 1 << 10;
    IrBuilder b(prog);
    int buf = b.object("buf", 1, false);
    PolyVal l1 = b.load(buf, 0, 1);
    b.store(buf, 0, b.mulImm(l1, 3));
    PolyVal l2 = b.load(buf, 0, 1);
    b.store(buf, 0, b.mulImm(l2, 5));

    StatSet stats;
    auto edges = runAliasAnalysis(prog, stats);
    // WAR (load->store) x2, RAW (store->load), WAW (store->store).
    EXPECT_GE(edges.size(), 4u);
}

TEST(Scheduler, RespectsDependences)
{
    IrProgram prog = tinyProgram();
    StatSet stats;
    AnalysisManager analyses;
    auto order = runScheduler(prog, analyses, CompilerOptions{}, stats);
    ASSERT_EQ(order.size(), prog.liveCount());
    std::vector<int> pos(prog.insts.size(), -1);
    for (size_t k = 0; k < order.size(); ++k)
        pos[order[k]] = static_cast<int>(k);
    for (size_t i = 0; i < prog.insts.size(); ++i) {
        const IrInst &inst = prog.insts[i];
        if (inst.dead)
            continue;
        for (int operand : {inst.a, inst.b, inst.c})
            if (operand >= 0) {
                EXPECT_LT(pos[operand], pos[i]);
            }
    }
}

TEST(Streaming, SingleConsumerLoadsStream)
{
    IrProgram prog = tinyProgram(); // load b has a single use
    StatSet stats;
    AnalysisManager analyses;
    auto order = runScheduler(prog, analyses, CompilerOptions{}, stats);
    auto info = runStreaming(prog, order, true, 96, stats);
    EXPECT_GE(stats.get("stream.loads"), 1);
    // Load of `a` has two consumers -> must not stream.
    EXPECT_EQ(info.streamedLoad[0] + info.streamedLoad[1], 1);
}

TEST(Streaming, DisabledMeansNothingStreams)
{
    IrProgram prog = tinyProgram();
    StatSet stats;
    AnalysisManager analyses;
    auto order = runScheduler(prog, analyses, CompilerOptions{}, stats);
    auto info = runStreaming(prog, order, false, 96, stats);
    for (auto v : info.streamedLoad)
        EXPECT_EQ(v, 0);
}

TEST(Compiler, EndToEndTinyProgram)
{
    IrProgram prog = tinyProgram();
    Compiler compiler;
    MachineProgram mp = compiler.compile(prog);
    EXPECT_GT(mp.insts.size(), 0u);
    // Exactly one STORE_RES reaches the output object.
    size_t stores = 0;
    for (const auto &mi : mp.insts)
        stores += mi.op == Opcode::STORE_RES ? 1 : 0;
    EXPECT_EQ(stores, 1u);
}

TEST(Compiler, SmallSramForcesSpills)
{
    FheParams fhe;
    fhe.logN = 14;
    fhe.levels = 16;
    fhe.dnum = 4;
    Workload w = buildBootstrapping(fhe, {256, 2, 2, 63, 8});

    CompilerOptions tight;
    tight.sramBytes = size_t(2) << 20; // 2 MB: ~16 registers
    Compiler c1(tight);
    IrProgram p1 = w.program;
    MachineProgram m1 = c1.compile(p1);

    CompilerOptions roomy;
    roomy.sramBytes = size_t(512) << 20;
    Compiler c2(roomy);
    IrProgram p2 = w.program;
    MachineProgram m2 = c2.compile(p2);

    EXPECT_GT(m1.spillLoads, m2.spillLoads);
    EXPECT_EQ(m2.spillLoads, 0u);
}

TEST(Compiler, OptimizationReducesInstructionCount)
{
    // The paper reports its code optimizer removes 12.9% of the
    // fully-packed bootstrapping instructions; ours must achieve a
    // substantial reduction too (exact value depends on lowering).
    FheParams fhe;
    fhe.logN = 15;
    fhe.levels = 16;
    fhe.dnum = 4;
    Workload w = buildBootstrapping(fhe, {1024, 3, 2, 127, 8});
    Compiler compiler;
    compiler.compile(w.program);
    EXPECT_GT(compiler.stats().get("optimized.reductionPct"), 10.0);
}

TEST(Compiler, DisassemblyIsReadable)
{
    IrProgram prog = tinyProgram();
    Compiler compiler;
    MachineProgram mp = compiler.compile(prog);
    std::string text = disassemble(mp);
    EXPECT_NE(text.find("LoadRes"), std::string::npos);
    EXPECT_NE(text.find("StoreRes"), std::string::npos);
}

} // namespace
} // namespace effact
