/**
 * @file
 * Unit tests for the minimal BigInt used in CRT reconstruction.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/bigint.h"

namespace effact {
namespace {

TEST(BigInt, ZeroAndSmall)
{
    BigInt z;
    EXPECT_TRUE(z.isZero());
    EXPECT_EQ(z.toString(), "0");
    EXPECT_EQ(z.modU64(7), 0u);

    BigInt a(42);
    EXPECT_FALSE(a.isZero());
    EXPECT_EQ(a.toString(), "42");
    EXPECT_EQ(a.modU64(5), 2u);
}

TEST(BigInt, AddCarryPropagation)
{
    BigInt a(~0ULL);
    a.addU64(1);
    // 2^64 needs two words.
    EXPECT_EQ(a.words().size(), 2u);
    EXPECT_EQ(a.modU64(1000000007ULL), (1ULL << 63) % 1000000007ULL * 2 %
                                           1000000007ULL);
}

TEST(BigInt, MulU64GrowsWords)
{
    BigInt a(1);
    for (int i = 0; i < 10; ++i)
        a.mulU64(1ULL << 60); // a = 2^600
    EXPECT_EQ(a.words().size(), 10u); // 600/64 = 9.375 -> 10 words
    EXPECT_DOUBLE_EQ(a.toDouble(), 0x1.0p600);
}

TEST(BigInt, SubAndCompare)
{
    BigInt a(1000), b(1);
    EXPECT_GT(a.compare(b), 0);
    a.sub(b);
    EXPECT_EQ(a.toString(), "999");
    BigInt c(999);
    EXPECT_EQ(a.compare(c), 0);
    a.sub(c);
    EXPECT_TRUE(a.isZero());
}

TEST(BigInt, ShiftRight)
{
    BigInt a(1);
    a.mulU64(1ULL << 63);
    a.mulU64(4); // a = 2^65
    a.shiftRight1();
    BigInt expect(1);
    expect.mulU64(1ULL << 63);
    expect.mulU64(2);
    EXPECT_EQ(a.compare(expect), 0);
}

TEST(BigInt, ModAgainstKnownProduct)
{
    // (2^61 - 1) * 12345 mod 97, computed independently.
    BigInt a((1ULL << 61) - 1);
    a.mulU64(12345);
    u64 expect = mulMod(((1ULL << 61) - 1) % 97, 12345 % 97, 97);
    EXPECT_EQ(a.modU64(97), expect);
}

TEST(BigInt, DecimalStringKnownValue)
{
    BigInt a(1);
    for (int i = 0; i < 2; ++i)
        a.mulU64(10000000000ULL);
    EXPECT_EQ(a.toString(), "100000000000000000000");
}

TEST(BigInt, RandomizedAddSubRoundTrip)
{
    Rng rng(7);
    for (int iter = 0; iter < 100; ++iter) {
        BigInt a(rng.next());
        a.mulU64(rng.next() | 1);
        BigInt b(rng.next());
        BigInt sum = a;
        sum.add(b);
        sum.sub(b);
        EXPECT_EQ(sum.compare(a), 0);
    }
}

} // namespace
} // namespace effact
