/**
 * @file
 * ResourceModel tests, in isolation from issue-order policy: decode
 * shapes, serial latency arithmetic, HBM channel serialization and
 * dual-DRAM-operand accounting, MAC-on-NTT steering, and streaming
 * fill overlap.
 */
#include <gtest/gtest.h>

#include "sim/resources.h"

namespace effact {
namespace {

constexpr size_t kResidueBytes = (size_t(1) << 16) * 8;

MachInst
inst(Opcode op, Operand dest = Operand::none(),
     Operand src0 = Operand::none(), Operand src1 = Operand::none())
{
    MachInst mi;
    mi.op = op;
    mi.dest = dest;
    mi.src0 = src0;
    mi.src1 = src1;
    return mi;
}

TEST(ResourceModel, DecodeShapes)
{
    ResourceModel res(HardwareConfig::asicEffact27(), kResidueBytes);

    InstShape ld = res.decode(inst(Opcode::LOAD_RES, Operand::regOp(0)));
    EXPECT_EQ(ld.fu_class, -1);

    InstShape ntt = res.decode(
        inst(Opcode::NTT, Operand::regOp(1), Operand::regOp(0)));
    EXPECT_EQ(ntt.fu_class, FU_NTT);
    EXPECT_DOUBLE_EQ(ntt.occupancy, res.nttCycles());

    InstShape mac = res.decode(inst(Opcode::MMAC, Operand::regOp(2),
                                    Operand::regOp(0), Operand::regOp(1)));
    EXPECT_EQ(mac.fu_class, FU_MUL);
    EXPECT_TRUE(mac.mac);
    EXPECT_DOUBLE_EQ(mac.occupancy, res.ewCycles());

    InstShape fill = res.decode(
        inst(Opcode::MMUL, Operand::regOp(2),
             Operand::stream(0, /*from_dram=*/true), Operand::regOp(1)));
    EXPECT_TRUE(fill.stream_fill);
    EXPECT_EQ(fill.extra_dram, 0);

    InstShape dual = res.decode(
        inst(Opcode::MMUL, Operand::regOp(2),
             Operand::stream(0, /*from_dram=*/true),
             Operand::stream(1, /*from_dram=*/true)));
    EXPECT_EQ(dual.extra_dram, 1);

    // A MMAC can stream all three sources from DRAM.
    MachInst tri = inst(Opcode::MMAC, Operand::regOp(2),
                        Operand::stream(0, /*from_dram=*/true),
                        Operand::stream(1, /*from_dram=*/true));
    tri.src2 = Operand::stream(2, /*from_dram=*/true);
    InstShape three = res.decode(tri);
    EXPECT_TRUE(three.stream_fill);
    EXPECT_EQ(three.extra_dram, 2);
}

TEST(ResourceModel, ModelConstantsMatchConfig)
{
    HardwareConfig hw = HardwareConfig::asicEffact27();
    ResourceModel res(hw, kResidueBytes);
    const size_t n = kResidueBytes / 8;
    EXPECT_DOUBLE_EQ(res.ewCycles(), double(n) / double(hw.lanes));
    EXPECT_DOUBLE_EQ(res.nttCycles(),
                     double(n) * 16 / 2.0 / double(hw.lanes));
    EXPECT_DOUBLE_EQ(res.memCycles(),
                     double(kResidueBytes) / hw.hbmBytesPerCycle());
}

TEST(ResourceModel, MemoryOpsSerializeOnHbmChannel)
{
    ResourceModel res(HardwareConfig::asicEffact27(), kResidueBytes);
    InstShape ld = res.decode(inst(Opcode::LOAD_RES, Operand::regOp(0)));

    IssuePlan p1 = res.plan(ld, 0.0);
    EXPECT_DOUBLE_EQ(p1.start, 0.0);
    EXPECT_TRUE(p1.uses_dram);
    double f1 = res.commit(ld, p1);
    EXPECT_DOUBLE_EQ(f1, res.memCycles() + ResourceModel::kStartupCycles);
    EXPECT_DOUBLE_EQ(res.dramBytes(), double(kResidueBytes));

    // The second load waits for the channel even with ready operands.
    IssuePlan p2 = res.plan(ld, 0.0);
    EXPECT_DOUBLE_EQ(p2.start, res.memCycles());
    res.commit(ld, p2);
    EXPECT_DOUBLE_EQ(res.dramBytes(), 2.0 * double(kResidueBytes));
    EXPECT_DOUBLE_EQ(res.hbmBusy(), 2.0 * res.memCycles());
}

TEST(ResourceModel, ComputePicksEarliestFreeUnit)
{
    HardwareConfig hw = HardwareConfig::asicEffact27(); // 2 mul units
    ResourceModel res(hw, kResidueBytes);
    InstShape mul = res.decode(inst(Opcode::MMUL, Operand::regOp(2),
                                    Operand::regOp(0), Operand::regOp(1)));

    IssuePlan p1 = res.plan(mul, 0.0);
    res.commit(mul, p1);
    IssuePlan p2 = res.plan(mul, 0.0);
    EXPECT_NE(p2.fu_inst, p1.fu_inst); // second unit still free
    EXPECT_DOUBLE_EQ(p2.start, 0.0);
    res.commit(mul, p2);
    IssuePlan p3 = res.plan(mul, 0.0); // both busy: waits for one
    EXPECT_DOUBLE_EQ(p3.start, res.ewCycles());
    // Operand readiness dominates when later than the unit.
    IssuePlan p4 = res.plan(mul, 10.0 * res.ewCycles());
    EXPECT_DOUBLE_EQ(p4.start, 10.0 * res.ewCycles());
}

TEST(ResourceModel, MacSteersToIdleNttUnits)
{
    HardwareConfig hw = HardwareConfig::asicEffact27();
    ResourceModel res(hw, kResidueBytes);
    InstShape mul = res.decode(inst(Opcode::MMUL, Operand::regOp(2),
                                    Operand::regOp(0), Operand::regOp(1)));
    InstShape mac = res.decode(inst(Opcode::MMAC, Operand::regOp(3),
                                    Operand::regOp(0), Operand::regOp(1)));

    // Fill both MUL units; the MAC then runs on an idle NTT unit.
    res.commit(mul, res.plan(mul, 0.0));
    res.commit(mul, res.plan(mul, 0.0));
    IssuePlan p = res.plan(mac, 0.0);
    EXPECT_EQ(p.fu_class, FU_NTT);
    EXPECT_DOUBLE_EQ(p.start, 0.0);

    // With reuse disabled the MAC serializes on the MUL units.
    hw.nttMacReuse = false;
    ResourceModel res2(hw, kResidueBytes);
    res2.commit(mul, res2.plan(mul, 0.0));
    res2.commit(mul, res2.plan(mul, 0.0));
    IssuePlan q = res2.plan(mac, 0.0);
    EXPECT_EQ(q.fu_class, FU_MUL);
    EXPECT_DOUBLE_EQ(q.start, res2.ewCycles());
}

TEST(ResourceModel, StreamingFillOverlapsComputeWithTransfer)
{
    ResourceModel res(HardwareConfig::asicEffact27(), kResidueBytes);
    InstShape fill = res.decode(
        inst(Opcode::MMUL, Operand::regOp(2),
             Operand::stream(0, /*from_dram=*/true), Operand::regOp(1)));

    IssuePlan p = res.plan(fill, 0.0);
    EXPECT_EQ(p.fu_class, FU_MUL);
    EXPECT_TRUE(p.uses_dram);
    // Execution is stretched to cover the fill (consumed on arrival).
    EXPECT_DOUBLE_EQ(p.occupancy,
                     std::max(res.ewCycles(), res.memCycles()));
    res.commit(fill, p);
    EXPECT_DOUBLE_EQ(res.dramBytes(), double(kResidueBytes));
    // The fill occupied the channel: a later fill waits for it.
    IssuePlan p2 = res.plan(fill, 0.0);
    EXPECT_DOUBLE_EQ(p2.start, res.memCycles());
}

TEST(ResourceModel, DualDramOperandsMoveTwoResidues)
{
    ResourceModel res(HardwareConfig::asicEffact27(), kResidueBytes);
    InstShape dual = res.decode(
        inst(Opcode::MMAD, Operand::regOp(2),
             Operand::stream(0, /*from_dram=*/true),
             Operand::stream(1, /*from_dram=*/true)));

    res.commit(dual, res.plan(dual, 0.0));
    EXPECT_DOUBLE_EQ(res.dramBytes(), 2.0 * double(kResidueBytes));
    EXPECT_DOUBLE_EQ(res.hbmBusy(), 2.0 * res.memCycles());
    EXPECT_DOUBLE_EQ(res.hbmFree(), 2.0 * res.memCycles());
}

TEST(ResourceModel, ZeroLengthStreamingFillIsFreeAndMonotone)
{
    // Degenerate residue size: a streaming fill of zero bytes must cost
    // zero HBM cycles, move zero traffic, and never move the channel's
    // free time backwards (commit writes `start + dram_cycles`, which
    // with dram_cycles = 0 must equal the already-reached floor).
    ResourceModel res(HardwareConfig::asicEffact27(), 0);
    EXPECT_DOUBLE_EQ(res.memCycles(), 0.0);
    EXPECT_DOUBLE_EQ(res.ewCycles(), 0.0);
    EXPECT_DOUBLE_EQ(res.nttCycles(), 0.0);

    InstShape fill = res.decode(
        inst(Opcode::MMUL, Operand::regOp(2),
             Operand::stream(0, /*from_dram=*/true), Operand::regOp(1)));
    ASSERT_TRUE(fill.stream_fill);
    IssuePlan p = res.plan(fill, 5.0);
    EXPECT_DOUBLE_EQ(p.start, 5.0);
    EXPECT_DOUBLE_EQ(p.occupancy, 0.0);
    res.commit(fill, p);
    EXPECT_DOUBLE_EQ(res.dramBytes(), 0.0);
    EXPECT_DOUBLE_EQ(res.hbmFree(), 5.0);
    EXPECT_DOUBLE_EQ(res.hbmBusy(), 0.0);

    // A second fill planned at an *earlier* data-ready time still
    // starts at the channel floor, not before it.
    IssuePlan p2 = res.plan(fill, 0.0);
    EXPECT_DOUBLE_EQ(p2.start, 5.0);
    res.commit(fill, p2);
    EXPECT_DOUBLE_EQ(res.hbmFree(), 5.0);
}

TEST(ResourceModel, DualDramBackToBackSaturatesTheChannel)
{
    // Dual-DRAM-operand instructions move two residues per issue; a
    // back-to-back train therefore advances the channel by 2x
    // memCycles each and keeps it saturated: busy == free at every
    // step (no idle gaps), and the k-th op starts at 2k * memCycles.
    ResourceModel res(HardwareConfig::asicEffact27(), kResidueBytes);
    InstShape dual = res.decode(
        inst(Opcode::MMAD, Operand::regOp(2),
             Operand::stream(0, /*from_dram=*/true),
             Operand::stream(1, /*from_dram=*/true)));
    const double mem = res.memCycles();
    for (int k = 0; k < 5; ++k) {
        IssuePlan p = res.plan(dual, 0.0);
        EXPECT_DOUBLE_EQ(p.start, 2.0 * k * mem) << "op " << k;
        res.commit(dual, p);
        EXPECT_DOUBLE_EQ(res.hbmFree(), 2.0 * (k + 1) * mem) << "op " << k;
        EXPECT_DOUBLE_EQ(res.hbmBusy(), res.hbmFree()) << "op " << k;
    }
    EXPECT_DOUBLE_EQ(res.dramBytes(), 10.0 * double(kResidueBytes));

    // A load arriving into the saturated channel queues behind the
    // whole train (both residues of every dual op).
    InstShape ld = res.decode(inst(Opcode::LOAD_RES, Operand::regOp(0)));
    EXPECT_DOUBLE_EQ(res.plan(ld, 0.0).start, 10.0 * mem);
}

TEST(ResourceModel, DualDramSecondResidueQueuesBehindCommit)
{
    // The second residue of a dual-DRAM op is accounted *after* the
    // plan's channel slot: hbmFree advances by dram_cycles at commit
    // and then by another memCycles. A single-source fill planned
    // right after must therefore see the 2x floor, not 1x — this is
    // the contention-at-capacity case the stock workloads (which
    // stream at most one DRAM operand per instruction in practice)
    // never hit.
    ResourceModel res(HardwareConfig::asicEffact27(), kResidueBytes);
    InstShape dual = res.decode(
        inst(Opcode::MMUL, Operand::regOp(2),
             Operand::stream(0, /*from_dram=*/true),
             Operand::stream(1, /*from_dram=*/true)));
    InstShape fill = res.decode(
        inst(Opcode::MMUL, Operand::regOp(3),
             Operand::stream(2, /*from_dram=*/true), Operand::regOp(1)));
    res.commit(dual, res.plan(dual, 0.0));
    IssuePlan p = res.plan(fill, 0.0);
    EXPECT_DOUBLE_EQ(p.start, 2.0 * res.memCycles());
}

TEST(ResourceModel, BusyCountersAccrue)
{
    ResourceModel res(HardwareConfig::asicEffact27(), kResidueBytes);
    InstShape ntt = res.decode(
        inst(Opcode::NTT, Operand::regOp(1), Operand::regOp(0)));
    InstShape add = res.decode(inst(Opcode::MMAD, Operand::regOp(2),
                                    Operand::regOp(0), Operand::regOp(1)));
    res.commit(ntt, res.plan(ntt, 0.0));
    res.commit(add, res.plan(add, 0.0));
    res.commit(add, res.plan(add, 0.0));
    EXPECT_DOUBLE_EQ(res.busy(FU_NTT), res.nttCycles());
    EXPECT_DOUBLE_EQ(res.busy(FU_ADD), 2.0 * res.ewCycles());
    EXPECT_DOUBLE_EQ(res.busy(FU_MUL), 0.0);
    EXPECT_DOUBLE_EQ(res.dramBytes(), 0.0);
}

} // namespace
} // namespace effact
