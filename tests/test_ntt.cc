/**
 * @file
 * NTT correctness: round trips, linearity, convolution vs schoolbook
 * ground truth, and the no-scale variant used by the Eq. 5 merge.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/montgomery.h"
#include "math/ntt.h"
#include "math/primes.h"

namespace effact {
namespace {

std::vector<u64>
randomPoly(Rng &rng, size_t n, u64 q)
{
    std::vector<u64> a(n);
    for (auto &c : a)
        c = rng.uniform(q);
    return a;
}

/**
 * One coefficient of the negacyclic product a * b mod (X^N + 1, q),
 * computed directly in O(N): c[k] = sum_{i+j=k} a[i]b[j]
 *                                 - sum_{i+j=k+N} a[i]b[j].
 * Lets large transforms check real convolution output on a sample of
 * coefficients instead of paying the full O(N^2) schoolbook.
 */
u64
negacyclicCoeff(const std::vector<u64> &a, const std::vector<u64> &b,
                size_t k, u64 q)
{
    const size_t n = a.size();
    u64 c = 0;
    for (size_t i = 0; i < n; ++i) {
        u64 term = mulMod(a[i], b[(k + n - i) % n], q);
        c = i <= k ? addMod(c, term, q) : subMod(c, term, q);
    }
    return c;
}

class NttSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(NttSizes, ForwardBackwardRoundTrip)
{
    const size_t n = GetParam();
    const u64 q = genNttPrimes(1, 54, n)[0];
    Ntt ntt(n, q);
    Rng rng(n);
    auto a = randomPoly(rng, n, q);
    auto b = a;
    ntt.forward(b);
    ntt.backward(b);
    EXPECT_EQ(a, b);
}

TEST_P(NttSizes, ConvolutionMatchesSchoolbook)
{
    const size_t n = GetParam();
    const u64 q = genNttPrimes(1, 50, n)[0];
    Ntt ntt(n, q);
    Rng rng(n + 1);
    auto a = randomPoly(rng, n, q);
    auto b = randomPoly(rng, n, q);

    auto fa = a, fb = b;
    ntt.forward(fa);
    ntt.forward(fb);
    for (size_t i = 0; i < n; ++i)
        fa[i] = mulMod(fa[i], fb[i], q);
    ntt.backward(fa);

    if (n <= 512) {
        // Small sizes: full O(N^2) schoolbook, every coefficient.
        EXPECT_EQ(fa, Ntt::negacyclicMulSchoolbook(a.data(), b.data(), n, q));
        return;
    }
    // Large sizes: check a deterministic sample of coefficients against
    // the O(N)-per-coefficient direct convolution (ends, middle, and a
    // random spread), capping the reference cost at O(kN).
    constexpr size_t kSamples = 24;
    Rng pick(n + 2);
    std::vector<size_t> idx = {0, 1, n / 2, n - 2, n - 1};
    while (idx.size() < kSamples)
        idx.push_back(pick.uniform(n));
    for (size_t k : idx)
        ASSERT_EQ(fa[k], negacyclicCoeff(a, b, k, q)) << "coeff " << k;
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, NttSizes,
                         ::testing::Values(4, 8, 64, 256, 1024, 4096));

TEST(Ntt, Linearity)
{
    const size_t n = 256;
    const u64 q = genNttPrimes(1, 45, n)[0];
    Ntt ntt(n, q);
    Rng rng(11);
    auto a = randomPoly(rng, n, q);
    auto b = randomPoly(rng, n, q);
    // NTT(a + b) == NTT(a) + NTT(b)  (Eq. 2, second identity)
    std::vector<u64> sum(n);
    for (size_t i = 0; i < n; ++i)
        sum[i] = addMod(a[i], b[i], q);
    auto fa = a, fb = b;
    ntt.forward(fa);
    ntt.forward(fb);
    ntt.forward(sum);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(sum[i], addMod(fa[i], fb[i], q));
}

TEST(Ntt, BackwardNoScaleDiffersByNInv)
{
    const size_t n = 128;
    const u64 q = genNttPrimes(1, 40, n)[0];
    Ntt ntt(n, q);
    Rng rng(12);
    auto a = randomPoly(rng, n, q);
    auto scaled = a, unscaled = a;
    ntt.forward(scaled);
    ntt.forward(unscaled);
    ntt.backward(scaled.data());
    ntt.backwardNoScale(unscaled.data());
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(scaled[i], mulMod(unscaled[i], ntt.nInv(), q));
}

TEST(Ntt, ConstantPolynomialHasFlatSpectrum)
{
    const size_t n = 64;
    const u64 q = genNttPrimes(1, 40, n)[0];
    Ntt ntt(n, q);
    std::vector<u64> a(n, 0);
    a[0] = 7; // constant polynomial 7
    ntt.forward(a);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(a[i], 7u); // constant evaluates to itself everywhere
}

TEST(Ntt, MontgomeryFormCommutesWithNtt)
{
    // SM representation survives NTT because NTT is linear: this is what
    // lets EFFACT keep all data in SM form through (i)NTT (Sec. IV-D5).
    const size_t n = 256;
    const u64 q = genNttPrimes(1, 50, n)[0];
    Ntt ntt(n, q);
    Montgomery mont(q);
    Rng rng(13);
    auto a = randomPoly(rng, n, q);
    auto a_sm = a;
    for (auto &c : a_sm)
        c = mont.toMont(c);
    ntt.forward(a);
    ntt.forward(a_sm);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(a_sm[i], mont.toMont(a[i]));
}

TEST(Ntt, RejectsNonNttFriendlyModulus)
{
    EXPECT_DEATH(Ntt(1024, 998244353ULL + 2), "NTT-friendly");
}

} // namespace
} // namespace effact
