/**
 * @file
 * Chebyshev approximation tests, anchored to the EvalMod use-case:
 * approximating the scaled sine on the ModRaise interval.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "math/cheby.h"

namespace effact {
namespace {

TEST(Cheby, ExactOnLowDegreePolynomials)
{
    // Degree-3 fit reproduces a cubic to machine precision.
    auto f = [](double x) { return 2.0 * x * x * x - x + 0.5; };
    auto s = ChebyshevSeries::fit(f, -2.0, 3.0, 3);
    for (double x = -2.0; x <= 3.0; x += 0.1)
        EXPECT_NEAR(s.eval(x), f(x), 1e-12);
}

TEST(Cheby, SineApproximationConverges)
{
    auto f = [](double x) { return std::sin(x); };
    double prev_err = 1e9;
    for (size_t deg : {7, 15, 23, 31}) {
        auto s = ChebyshevSeries::fit(f, -M_PI, M_PI, deg);
        double err = 0.0;
        for (double x = -M_PI; x <= M_PI; x += 0.01)
            err = std::max(err, std::fabs(s.eval(x) - f(x)));
        EXPECT_LT(err, prev_err);
        prev_err = err;
    }
    EXPECT_LT(prev_err, 1e-10);
}

TEST(Cheby, EvalModShapedTarget)
{
    // EvalMod approximates q/(2*pi) * sin(2*pi*x/q) for |x| <= K*q with
    // x near multiples of q; the fit quality near x=0 bounds the
    // bootstrapping precision.
    const double q = 1024.0;
    const double k_range = 12.0;
    auto f = [&](double x) { return q / (2 * M_PI) * std::sin(2 * M_PI * x / q); };
    // Rule of thumb: degree must exceed the argument span in radians
    // (2*pi*K ~ 75 here) with margin for the error floor.
    auto s = ChebyshevSeries::fit(f, -k_range * q, k_range * q, 127);
    // Near integer multiples m*q + eps the function approximates eps.
    for (int m = -11; m <= 11; ++m) {
        for (double eps : {-30.0, -5.0, 0.0, 5.0, 30.0}) {
            double x = m * q + eps;
            double target = q / (2 * M_PI) * std::sin(2 * M_PI * eps / q);
            EXPECT_NEAR(s.eval(x), target, 0.05) << "m=" << m;
        }
    }
}

TEST(Cheby, NormalizeMapsEndpoints)
{
    auto s = ChebyshevSeries::fit([](double x) { return x; }, 2.0, 10.0, 1);
    EXPECT_DOUBLE_EQ(s.normalize(2.0), -1.0);
    EXPECT_DOUBLE_EQ(s.normalize(10.0), 1.0);
    EXPECT_DOUBLE_EQ(s.normalize(6.0), 0.0);
}

TEST(Cheby, DegreeAccessor)
{
    auto s = ChebyshevSeries::fit([](double x) { return x; }, -1, 1, 15);
    EXPECT_EQ(s.degree(), 15u);
    EXPECT_EQ(s.coeffs().size(), 16u);
}

} // namespace
} // namespace effact
