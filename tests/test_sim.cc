/**
 * @file
 * Simulator tests: latency model, bandwidth accounting, FU contention,
 * NTT<->MAC reuse, and streaming overlap behaviour.
 */
#include <gtest/gtest.h>

#include "compiler/pass.h"
#include "ir/workloads.h"
#include "sim/machine.h"

namespace effact {
namespace {

/** One load, one NTT, one store over a single residue. */
MachineProgram
loadComputeStore(size_t residue_bytes)
{
    MachineProgram mp;
    mp.residueBytes = residue_bytes;
    MachInst ld;
    ld.op = Opcode::LOAD_RES;
    ld.dest = Operand::regOp(0);
    mp.insts.push_back(ld);
    MachInst ntt;
    ntt.op = Opcode::NTT;
    ntt.dest = Operand::regOp(1);
    ntt.src0 = Operand::regOp(0);
    mp.insts.push_back(ntt);
    MachInst st;
    st.op = Opcode::STORE_RES;
    st.src0 = Operand::regOp(1);
    mp.insts.push_back(st);
    return mp;
}

TEST(Simulator, SerialChainLatencyAddsUp)
{
    HardwareConfig hw = HardwareConfig::asicEffact27();
    const size_t n = size_t(1) << 16;
    MachineProgram mp = loadComputeStore(n * 8);
    SimReport r = Simulator(hw).run(mp);

    const double mem = double(n * 8) / hw.hbmBytesPerCycle();
    const double ntt = double(n) * 16 / 2 / double(hw.lanes);
    // Load, then NTT, then store, plus fixed startup latencies.
    EXPECT_NEAR(r.cycles, 2 * mem + ntt + 3 * 16, 2.0);
    EXPECT_DOUBLE_EQ(r.dramBytes, double(2 * n * 8));
}

TEST(Simulator, IndependentOpsOverlapAcrossUnits)
{
    HardwareConfig hw = HardwareConfig::asicEffact27();
    const size_t n = size_t(1) << 16;
    MachineProgram mp;
    mp.residueBytes = n * 8;
    // Two independent MMULs with 2 mul units: should overlap fully.
    for (int i = 0; i < 2; ++i) {
        MachInst mi;
        mi.op = Opcode::MMUL;
        mi.dest = Operand::regOp(2 + i);
        mi.src0 = Operand::regOp(0);
        mi.src1 = Operand::regOp(1);
        mp.insts.push_back(mi);
    }
    SimReport r2 = Simulator(hw).run(mp);

    // Four: exceeds the 2 mul units -> serialization.
    for (int i = 0; i < 2; ++i) {
        MachInst mi;
        mi.op = Opcode::MMUL;
        mi.dest = Operand::regOp(4 + i);
        mi.src0 = Operand::regOp(0);
        mi.src1 = Operand::regOp(1);
        mp.insts.push_back(mi);
    }
    SimReport r4 = Simulator(hw).run(mp);
    EXPECT_GT(r4.cycles, r2.cycles);
    EXPECT_NEAR(r4.cycles, r2.cycles + 64, 2.0); // one extra beat batch
}

TEST(Simulator, MacReuseUsesIdleNttUnits)
{
    HardwareConfig hw = HardwareConfig::asicEffact27();
    const size_t n = size_t(1) << 16;
    MachineProgram mp;
    mp.residueBytes = n * 8;
    // A burst of independent MACs: with reuse they spread over
    // NTT+MUL units; without, they serialize on the MUL units.
    for (int i = 0; i < 8; ++i) {
        MachInst mi;
        mi.op = Opcode::MMAC;
        mi.dest = Operand::regOp(8 + i);
        mi.src0 = Operand::regOp(0);
        mi.src1 = Operand::regOp(1);
        mp.insts.push_back(mi);
    }
    SimReport with = Simulator(hw).run(mp);
    hw.nttMacReuse = false;
    SimReport without = Simulator(hw).run(mp);
    EXPECT_LT(with.cycles, without.cycles);
}

TEST(Simulator, StreamingOperandOverlapsComputeWithTransfer)
{
    HardwareConfig hw = HardwareConfig::asicEffact27();
    const size_t n = size_t(1) << 16;

    // Explicit load then MMUL (no streaming).
    MachineProgram mp1;
    mp1.residueBytes = n * 8;
    {
        MachInst ld;
        ld.op = Opcode::LOAD_RES;
        ld.dest = Operand::regOp(0);
        mp1.insts.push_back(ld);
        MachInst mul;
        mul.op = Opcode::MMUL;
        mul.dest = Operand::regOp(2);
        mul.src0 = Operand::regOp(0);
        mul.src1 = Operand::regOp(1);
        mp1.insts.push_back(mul);
    }
    SimReport staged = Simulator(hw).run(mp1);

    // Streaming operand straight from DRAM.
    MachineProgram mp2;
    mp2.residueBytes = n * 8;
    {
        MachInst mul;
        mul.op = Opcode::MMUL;
        mul.dest = Operand::regOp(2);
        mul.src0 = Operand::stream(0, /*from_dram=*/true);
        mul.src1 = Operand::regOp(1);
        mp2.insts.push_back(mul);
    }
    SimReport streamed = Simulator(hw).run(mp2);

    EXPECT_LT(streamed.cycles, staged.cycles);
    EXPECT_DOUBLE_EQ(streamed.dramBytes, staged.dramBytes);
}

TEST(Simulator, FifoForwardMatchesProducerConsumer)
{
    HardwareConfig hw = HardwareConfig::asicEffact27();
    const size_t n = size_t(1) << 16;
    MachineProgram mp;
    mp.residueBytes = n * 8;
    MachInst prod;
    prod.op = Opcode::MMUL;
    prod.dest = Operand::stream(7); // FIFO token 7
    prod.src0 = Operand::regOp(0);
    prod.src1 = Operand::regOp(1);
    mp.insts.push_back(prod);
    MachInst cons;
    cons.op = Opcode::MMAD;
    cons.dest = Operand::regOp(2);
    cons.src0 = Operand::stream(7);
    cons.src1 = Operand::regOp(1);
    mp.insts.push_back(cons);
    SimReport r = Simulator(hw).run(mp);
    // Consumer starts only after producer finishes: > one op each.
    EXPECT_GT(r.cycles, 2 * 64.0);
    EXPECT_EQ(r.dramBytes, 0.0);
}

TEST(Simulator, HigherBandwidthShortensMemoryBoundPrograms)
{
    FheParams fhe;
    fhe.logN = 15;
    fhe.levels = 16;
    fhe.dnum = 4;
    Workload w = buildBootstrapping(fhe, {1024, 2, 2, 63, 8});
    Compiler compiler;
    MachineProgram mp = compiler.compile(w.program);

    HardwareConfig slow = HardwareConfig::asicEffact27();
    slow.hbmBytesPerSec = 0.3e12;
    HardwareConfig fast = HardwareConfig::asicEffact27();
    fast.hbmBytesPerSec = 2.4e12;
    SimReport rs = Simulator(slow).run(mp);
    SimReport rf = Simulator(fast).run(mp);
    EXPECT_LT(rf.cycles, rs.cycles);
}

TEST(Simulator, UtilizationsAreFractions)
{
    FheParams fhe;
    fhe.logN = 14;
    fhe.levels = 14;
    fhe.dnum = 2;
    Workload w = buildBootstrapping(fhe, {256, 2, 2, 31, 8});
    Compiler compiler;
    MachineProgram mp = compiler.compile(w.program);
    SimReport r = Simulator(HardwareConfig::asicEffact27()).run(mp);
    for (double u : {r.dramUtil, r.nttUtil, r.mulAddUtil, r.autoUtil}) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0 + 1e-9);
    }
    EXPECT_GT(r.cycles, 0.0);
}

// --- Event-driven core vs the legacy rescan loop ------------------------

/** The event-driven issue core must reproduce the legacy loop exactly. */
void
expectEquivalent(const HardwareConfig &hw, const MachineProgram &mp)
{
    Simulator sim(hw);
    SimReport ev = sim.run(mp);
    SimReport ref = sim.runReference(mp);
    EXPECT_DOUBLE_EQ(ev.cycles, ref.cycles);
    EXPECT_DOUBLE_EQ(ev.dramBytes, ref.dramBytes);
    EXPECT_DOUBLE_EQ(ev.dramUtil, ref.dramUtil);
    EXPECT_DOUBLE_EQ(ev.nttUtil, ref.nttUtil);
    EXPECT_DOUBLE_EQ(ev.mulAddUtil, ref.mulAddUtil);
    EXPECT_DOUBLE_EQ(ev.autoUtil, ref.autoUtil);
    EXPECT_EQ(ev.instructions, ref.instructions);
}

TEST(SimulatorEquivalence, HandBuiltPrograms)
{
    HardwareConfig hw = HardwareConfig::asicEffact27();
    const size_t n = size_t(1) << 16;
    expectEquivalent(hw, loadComputeStore(n * 8));

    MachineProgram fifo;
    fifo.residueBytes = n * 8;
    MachInst prod;
    prod.op = Opcode::MMUL;
    prod.dest = Operand::stream(7);
    prod.src0 = Operand::regOp(0);
    prod.src1 = Operand::regOp(1);
    fifo.insts.push_back(prod);
    MachInst cons;
    cons.op = Opcode::MMAD;
    cons.dest = Operand::regOp(2);
    cons.src0 = Operand::stream(7);
    cons.src1 = Operand::regOp(1);
    fifo.insts.push_back(cons);
    expectEquivalent(hw, fifo);

    MachineProgram macs;
    macs.residueBytes = n * 8;
    for (int i = 0; i < 8; ++i) {
        MachInst mi;
        mi.op = Opcode::MMAC;
        mi.dest = Operand::regOp(8 + i);
        mi.src0 = Operand::regOp(0);
        mi.src1 = Operand::regOp(1);
        macs.insts.push_back(mi);
    }
    expectEquivalent(hw, macs);
    hw.nttMacReuse = false;
    expectEquivalent(hw, macs);
}

TEST(SimulatorEquivalence, CompiledBootstrapAcrossConfigs)
{
    FheParams fhe;
    fhe.logN = 14;
    fhe.levels = 16;
    fhe.dnum = 4;
    Workload w = buildBootstrapping(fhe, {256, 2, 2, 63, 8});
    Compiler compiler;
    MachineProgram mp = compiler.compile(w.program);

    for (HardwareConfig hw :
         {HardwareConfig::asicEffact27(), HardwareConfig::asicEffact162(),
          HardwareConfig::fpgaEffact()})
        expectEquivalent(hw, mp);

    HardwareConfig inorder = HardwareConfig::asicEffact27();
    inorder.issueWindow = 1;
    expectEquivalent(inorder, mp);
    HardwareConfig wide = HardwareConfig::asicEffact27();
    wide.issueWindow = 4096; // wider than the program: no boundary
    expectEquivalent(wide, mp);
}

TEST(SimulatorEquivalence, TightSramSpillingProgram)
{
    FheParams fhe;
    fhe.logN = 14;
    fhe.levels = 16;
    fhe.dnum = 4;
    Workload w = buildBootstrapping(fhe, {256, 2, 2, 63, 8});
    CompilerOptions tight;
    tight.sramBytes = size_t(2) << 20;
    Compiler compiler(tight);
    MachineProgram mp = compiler.compile(w.program);
    HardwareConfig hw = HardwareConfig::asicEffact27();
    hw.sramBytes = tight.sramBytes;
    expectEquivalent(hw, mp);
}

TEST(Simulator, HbmFloorRefreshCoversEveryGroupAfterDualDramCommit)
{
    // A dual-DRAM-operand commit advances the HBM channel by *two*
    // residues, and every ready group whose issue floor covers the
    // channel — pure memory ops, per-class streaming fills, and the
    // steerable-MAC fill group — must observe the move before the next
    // issue round (the ROADMAP "batch HBM-floor refreshes" note). Four
    // independent instructions, one per group, issue in index order,
    // each queueing behind the full channel history.
    HardwareConfig hw = HardwareConfig::asicEffact27();
    const size_t n = size_t(1) << 16;
    MachineProgram mp;
    mp.residueBytes = n * 8;

    MachInst dual; // ADD-class with two DRAM-streamed sources
    dual.op = Opcode::MMAD;
    dual.dest = Operand::regOp(2);
    dual.src0 = Operand::stream(0, /*from_dram=*/true);
    dual.src1 = Operand::stream(1, /*from_dram=*/true);
    mp.insts.push_back(dual);
    MachInst ld; // pure memory group
    ld.op = Opcode::LOAD_RES;
    ld.dest = Operand::regOp(0);
    mp.insts.push_back(ld);
    MachInst fill; // MUL-class streaming-fill group
    fill.op = Opcode::MMUL;
    fill.dest = Operand::regOp(3);
    fill.src0 = Operand::stream(2, /*from_dram=*/true);
    fill.src1 = Operand::regOp(1);
    mp.insts.push_back(fill);
    MachInst mac_fill; // steerable-MAC streaming-fill group
    mac_fill.op = Opcode::MMAC;
    mac_fill.dest = Operand::regOp(4);
    mac_fill.src0 = Operand::stream(3, /*from_dram=*/true);
    mac_fill.src1 = Operand::regOp(1);
    mp.insts.push_back(mac_fill);

    const double mem = double(n * 8) / hw.hbmBytesPerCycle();
    SimReport r = Simulator(hw).run(mp);
    // Channel history: dual takes [0, 2*mem), then each fill/load takes
    // one more residue slot; the last (the MAC fill) runs [4*mem, 5*mem)
    // and its execution is stretched to the transfer.
    EXPECT_NEAR(r.cycles, 5 * mem + 16, 1e-6);
    EXPECT_DOUBLE_EQ(r.dramBytes, 5.0 * double(n * 8));
    expectEquivalent(hw, mp);
}

TEST(Simulator, InOrderWindowOneIsSlower)
{
    FheParams fhe;
    fhe.logN = 14;
    fhe.levels = 14;
    fhe.dnum = 2;
    Workload w = buildBootstrapping(fhe, {256, 2, 2, 31, 8});
    Compiler compiler;
    MachineProgram mp = compiler.compile(w.program);

    HardwareConfig ooo = HardwareConfig::asicEffact27();
    HardwareConfig inorder = ooo;
    inorder.issueWindow = 1;
    SimReport r_ooo = Simulator(ooo).run(mp);
    SimReport r_io = Simulator(inorder).run(mp);
    EXPECT_LE(r_ooo.cycles, r_io.cycles);
}

} // namespace
} // namespace effact
