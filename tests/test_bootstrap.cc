/**
 * @file
 * Bootstrapping tests: Chebyshev BSGS evaluation, CtS/StC inverse
 * round-trip, and the full fully-packed pipeline refreshing a level-1
 * ciphertext (Sec. V-A).
 */
#include <cmath>

#include <gtest/gtest.h>

#include "ckks/bootstrap.h"
#include "ckks/encryptor.h"

namespace effact {
namespace {

CkksParams
bootParams()
{
    CkksParams p;
    p.logN = 8;
    p.levels = 16;
    // A wider scale (2^45) keeps the EvalMod noise floor low, and the
    // sparse secret (h=16) keeps the ModRaise overflow range small —
    // both standard bootstrapping practice.
    p.logScale = 45;
    p.logQ0 = 54;
    p.dnum = 4;
    p.hammingWeight = 16;
    return p;
}

BootstrapConfig
bootConfig()
{
    BootstrapConfig c;
    c.kRange = 8.0;
    c.sineDegree = 159;
    c.babySteps = 16;
    return c;
}

class BootstrapFixture : public ::testing::Test
{
  protected:
    BootstrapFixture()
        : ctx(bootParams()), encoder(ctx), rng(1234), keygen(ctx, rng),
          sk(keygen.genSecretKey()), relin(keygen.genRelinKey(sk)),
          enc(ctx, sk, rng)
    {
        // Bootstrapping needs every rotation its transforms touch, plus
        // conjugation.
        CkksEvaluator probe(ctx, encoder, &relin, nullptr);
        Bootstrapper probe_boot(ctx, encoder, probe, bootConfig());
        galois = keygen.genGaloisKeys(sk, probe_boot.requiredRotations(),
                                      /*conjugate=*/true);
        eval = std::make_unique<CkksEvaluator>(ctx, encoder, &relin,
                                               &galois);
        boot = std::make_unique<Bootstrapper>(ctx, encoder, *eval, bootConfig());
    }

    CkksContext ctx;
    CkksEncoder encoder;
    Rng rng;
    KeyGenerator keygen;
    SecretKey sk;
    SwitchingKey relin;
    GaloisKeys galois;
    CkksEncryptor enc;
    std::unique_ptr<CkksEvaluator> eval;
    std::unique_ptr<Bootstrapper> boot;
};

TEST_F(BootstrapFixture, ChebyshevEvalMatchesClenshaw)
{
    // Evaluate an arbitrary smooth function homomorphically on values in
    // [-1, 1] and compare with the double-precision Clenshaw reference.
    auto f = [](double x) { return std::exp(-x * x) * std::cos(3 * x); };
    auto series = ChebyshevSeries::fit(f, -1.0, 1.0, 63);

    const size_t slots = ctx.slots();
    std::vector<cplx> xs(slots);
    for (size_t i = 0; i < slots; ++i)
        xs[i] = cplx(-1.0 + 2.0 * double(i) / double(slots - 1), 0.0);

    Ciphertext ct = enc.encrypt(encoder.encode(xs, ctx.scale(),
                                               ctx.levels()));
    Ciphertext out = boot->evalChebyshev(series, ct);
    auto got = encoder.decode(enc.decrypt(out), slots);
    for (size_t i = 0; i < slots; ++i)
        EXPECT_NEAR(got[i].real(), series.eval(xs[i].real()), 1e-4)
            << "slot " << i;
}

TEST_F(BootstrapFixture, CtsThenStcIsIdentity)
{
    // StC ∘ (lo, hi) ∘ CtS is the identity linear map; run it on a
    // mod-raised ciphertext and compare decoded slots before/after.
    const size_t slots = ctx.slots();
    std::vector<cplx> msg(slots);
    for (size_t i = 0; i < slots; ++i)
        msg[i] = cplx(0.3 * std::cos(0.1 * double(i)),
                      0.2 * std::sin(0.2 * double(i)));
    Ciphertext ct = enc.encrypt(encoder.encode(msg, ctx.scale(),
                                               ctx.levels()));
    auto [lo, hi] = boot->coeffToSlot(ct);
    Ciphertext back = boot->slotToCoeff(lo, hi);
    auto got = encoder.decode(enc.decrypt(back), slots);
    for (size_t i = 0; i < slots; ++i)
        EXPECT_LT(std::abs(got[i] - msg[i]), 1e-3) << "slot " << i;
}

TEST_F(BootstrapFixture, ModRaisePreservesMessageModQ0)
{
    // After ModRaise the plaintext is m + q0*I: reducing the decrypted
    // coefficients mod q0 must recover the original message.
    const size_t slots = ctx.slots();
    std::vector<cplx> msg(slots);
    for (size_t i = 0; i < slots; ++i)
        msg[i] = cplx(0.25 * std::sin(double(i)), 0.0);
    Ciphertext ct = enc.encrypt(encoder.encode(msg, ctx.scale(), 1));
    Ciphertext raised = boot->modRaise(ct);
    EXPECT_EQ(raised.level(), ctx.levels());
    EXPECT_DOUBLE_EQ(raised.scale, ct.scale);

    Plaintext dec = enc.decrypt(raised);
    RnsPoly poly = dec.poly;
    poly.toCoeff();
    // Reduce every coefficient mod q0 (centered) and decode on 1 limb.
    Plaintext folded;
    folded.scale = dec.scale;
    folded.poly = RnsPoly(ctx.qBasisAt(1), PolyFormat::Coeff);
    const u64 q0 = ctx.qBasis()->prime(0);
    for (size_t i = 0; i < ctx.degree(); ++i)
        folded.poly.limb(0)[i] = poly.limb(0)[i] % q0;
    auto got = encoder.decode(folded, slots);
    for (size_t i = 0; i < slots; ++i)
        EXPECT_LT(std::abs(got[i] - msg[i]), 1e-4) << "slot " << i;
}

TEST_F(BootstrapFixture, FullPipelineRefreshesCiphertext)
{
    const size_t slots = ctx.slots();
    std::vector<cplx> msg(slots);
    for (size_t i = 0; i < slots; ++i)
        msg[i] = cplx(0.4 * std::cos(0.3 * double(i)),
                      0.3 * std::sin(0.15 * double(i)));

    Ciphertext ct = enc.encrypt(encoder.encode(msg, ctx.scale(), 1));
    ASSERT_EQ(ct.level(), 1u);

    Ciphertext refreshed = boot->bootstrap(ct);
    EXPECT_GT(refreshed.level(), 2u)
        << "bootstrapping must leave usable levels";

    auto got = encoder.decode(enc.decrypt(refreshed), slots);
    double err = 0;
    for (size_t i = 0; i < slots; ++i)
        err = std::max(err, std::abs(got[i] - msg[i]));
    EXPECT_LT(err, 1e-2) << "bootstrapping precision too low";
}

TEST_F(BootstrapFixture, RefreshedCiphertextSupportsFurtherOps)
{
    const size_t slots = ctx.slots();
    std::vector<cplx> msg(slots, cplx(0.5, 0.0));
    Ciphertext ct = enc.encrypt(encoder.encode(msg, ctx.scale(), 1));
    Ciphertext refreshed = boot->bootstrap(ct);
    // Square the refreshed ciphertext: 0.25 expected.
    Ciphertext sq = eval->rescale(eval->mult(refreshed, refreshed));
    auto got = encoder.decode(enc.decrypt(sq), slots);
    for (size_t i = 0; i < slots; ++i)
        EXPECT_NEAR(got[i].real(), 0.25, 2e-2);
}

TEST_F(BootstrapFixture, SineSeriesApproximatesModulo)
{
    // Spot-check the fitted series against x mod q' on in-range inputs.
    const double q_prime =
        double(ctx.qBasis()->prime(0)) / ctx.scale();
    const auto &s = boot->sineSeries();
    const int k_max = static_cast<int>(bootConfig().kRange);
    for (int mult = -k_max; mult <= k_max; mult += 2) {
        for (double eps : {-0.3, 0.0, 0.2}) {
            double x = mult * q_prime + eps;
            EXPECT_NEAR(s.eval(x), q_prime / (2 * M_PI) *
                                       std::sin(2 * M_PI * eps / q_prime),
                        1e-6);
        }
    }
}

} // namespace
} // namespace effact
